// Chaos runner: uniform sweeps and coverage-guided search over randomized
// fault schedules, through the invariant auditor. Any failing schedule is
// shrunk to a minimal repro that prints as a ready-to-paste FaultSpec list;
// search failures also print the coverage features they newly reached.
//
// Examples:
//   ./build/examples/chaos_cli --seeds=50
//   ./build/examples/chaos_cli --seeds=200 --intensity=2.0
//   ./build/examples/chaos_cli --seeds=20 --scrub=false   (expect failures:
//       silent corruption is never repaired without scrubbing)
//   ./build/examples/chaos_cli --search --search-rounds=10 --jobs=8
//   ./build/examples/chaos_cli --search --corpus-out=corpus.bin
//   ./build/examples/chaos_cli --search --corpus-in=corpus.bin
//   ./build/examples/chaos_cli --seeds=20 --profile --profile-top=8
#include <cstdio>
#include <fstream>
#include <map>

#include "chaos/search.h"
#include "chaos/sweep.h"
#include "common/flags.h"
#include "obs/prof.h"

using namespace pahoehoe;

namespace {

int run_search_mode(core::RunConfig config, chaos::SearchOptions options,
                    const std::string& corpus_in,
                    const std::string& corpus_out) {
  if (!corpus_in.empty()) {
    std::ifstream in(corpus_in, std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "cannot read corpus file %s\n", corpus_in.c_str());
      return 2;
    }
    const Bytes data((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    options.initial_corpus = chaos::decode_corpus(data);
    std::printf("loaded %zu corpus schedules from %s\n",
                options.initial_corpus.size(), corpus_in.c_str());
  }

  // on_round fires sequentially after each round's deterministic merge, so
  // streaming per-round progress needs no reordering buffer.
  options.on_round = [](const chaos::SearchRound& round) {
    std::printf("round %2d: %4d runs  %4zu features  %3zu corpus  "
                "%d failures\n",
                round.round, round.runs, round.features, round.corpus,
                round.failures);
    std::fflush(stdout);
  };

  const chaos::SearchResult result = chaos::run_search(config, options);
  std::printf("\n%s", result.summary().c_str());

  if (!corpus_out.empty()) {
    std::vector<std::vector<core::FaultSpec>> schedules;
    schedules.reserve(result.corpus.size());
    for (const chaos::CorpusEntry& entry : result.corpus) {
      schedules.push_back(entry.schedule);
    }
    const Bytes data = chaos::encode_corpus(schedules);
    std::ofstream out(corpus_out, std::ios::binary);
    out.write(reinterpret_cast<const char*>(data.data()),
              static_cast<std::streamsize>(data.size()));
    if (!out) {
      std::fprintf(stderr, "cannot write corpus file %s\n",
                   corpus_out.c_str());
      return 2;
    }
    std::printf("wrote %zu corpus schedules to %s\n", schedules.size(),
                corpus_out.c_str());
  }
  return result.exit_code();
}

/// The hottest phases by wall time, over everything this process ran
/// (worker threads flush on join, so the table is complete here).
void print_profile(size_t top) {
  std::printf("\nwall-clock profile (host time; hottest %zu phases):\n%s",
              top, obs::prof::global_report().to_text(top).c_str());
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);

  chaos::SweepOptions sweep;
  sweep.seeds = static_cast<int>(flags.get_int("seeds", 50, "seeds to run"));
  sweep.base_seed =
      static_cast<uint64_t>(flags.get_int("base-seed", 1, "first seed"));
  sweep.jobs = static_cast<int>(flags.get_int(
      "jobs", 1, "worker threads (0 = hardware); summary is identical "
                 "for every value"));
  sweep.schedule.intensity = flags.get_double(
      "intensity", 1.0, "fault count scale (~6 faults at 1.0)");
  sweep.schedule.corruption =
      flags.get_bool("corruption", true, "inject silent frag corruption");
  sweep.schedule.crashes =
      flags.get_bool("crashes", true, "inject FS/KLS crash-recover");
  sweep.schedule.proxy_crashes =
      flags.get_bool("proxy-crashes", true, "inject proxy crashes");
  sweep.schedule.partitions =
      flags.get_bool("partitions", true, "inject DC partitions");
  sweep.schedule.loss = flags.get_bool("loss", true, "inject iid loss");
  sweep.schedule.blackouts =
      flags.get_bool("blackouts", true, "inject node blackouts");
  sweep.schedule.duplication =
      flags.get_bool("duplication", true, "inject duplication bursts");
  sweep.schedule.disk_destroys =
      flags.get_bool("disk-destroys", true, "inject FS disk wipes");
  sweep.shrink_failures =
      flags.get_bool("shrink", true, "shrink failing schedules");
  sweep.shrink.max_runs = static_cast<int>(
      flags.get_int("shrink-runs", 400, "re-run budget per shrink"));
  sweep.trace_capacity = static_cast<size_t>(flags.get_int(
      "trace-capacity", 512,
      "message-trace ring per run; failing seeds print the tail (0 = off)"));
  sweep.trace_dump_lines = static_cast<size_t>(flags.get_int(
      "trace-lines", 40, "trace lines in a failing seed's forensics"));
  sweep.spans = flags.get_bool(
      "spans", true,
      "causal span tracing; failing seeds print the violating version's "
      "span tree");

  // Coverage-guided search mode (chaos/search.h).
  const bool search = flags.get_bool(
      "search", false,
      "coverage-guided schedule search instead of a uniform sweep");
  chaos::SearchOptions search_options;
  search_options.rounds = static_cast<int>(flags.get_int(
      "search-rounds", 10, "mutation rounds after the seeding round"));
  search_options.batch = static_cast<int>(
      flags.get_int("search-batch", 16, "candidates per mutation round"));
  search_options.seed_corpus = static_cast<int>(flags.get_int(
      "search-seeds", 8, "uniformly generated schedules seeding the corpus"));
  const std::string corpus_in = flags.get_string(
      "corpus-in", "", "corpus file to replay before the seeding round");
  const std::string corpus_out = flags.get_string(
      "corpus-out", "", "file to write the final corpus to");

  core::RunConfig config = chaos::chaos_default_config();
  const bool scrub = flags.get_bool(
      "scrub", true, "periodic scrub-and-repair (off: corruption sticks)");
  if (!scrub) config.convergence.scrub_interval = 0;
  config.workload.num_puts = static_cast<int>(
      flags.get_int("puts", config.workload.num_puts, "objects to store"));

  // Wall-clock phase profiling (DESIGN.md §11): a pure side channel, so
  // sweep/search results are byte-identical with it on or off.
  const bool profile = flags.get_bool(
      "profile", false,
      "print the hottest wall-clock phases after the run");
  const int64_t profile_top = flags.get_int(
      "profile-top", 12, "phases to print with --profile (hottest first)");
  flags.finish();
  if (profile_top < 1) {
    std::fprintf(stderr, "flag error: --profile-top must be >= 1, got %lld\n",
                 static_cast<long long>(profile_top));
    return 2;
  }
  obs::prof::set_enabled(profile);

  if (search) {
    search_options.base_seed = sweep.base_seed;
    search_options.jobs = sweep.jobs;
    search_options.schedule = sweep.schedule;
    search_options.shrink_failures = sweep.shrink_failures;
    search_options.shrink = sweep.shrink;
    search_options.trace_capacity = sweep.trace_capacity;
    search_options.trace_dump_lines = sweep.trace_dump_lines;
    const int rc = run_search_mode(config, std::move(search_options),
                                   corpus_in, corpus_out);
    if (profile) print_profile(static_cast<size_t>(profile_top));
    return rc;
  }

  // The hook fires in completion order, which is scheduler-dependent when
  // jobs > 1. Buffer out-of-order seeds and flush in seed order so stdout
  // is byte-identical for every job count (it runs under the sweep lock,
  // so plain state is fine).
  const bool verbose = sweep.seeds <= 100;
  auto pending = std::make_shared<std::map<uint64_t, chaos::SeedOutcome>>();
  auto next = std::make_shared<uint64_t>(sweep.base_seed);
  sweep.on_seed = [verbose, pending, next](const chaos::SeedOutcome& outcome) {
    (*pending)[outcome.seed] = outcome;
    for (auto it = pending->begin();
         it != pending->end() && it->first == *next;
         it = pending->erase(it), ++*next) {
      const chaos::SeedOutcome& done = it->second;
      if (done.passed) {
        if (verbose) {
          std::printf("seed %llu ok (%zu faults)\n",
                      static_cast<unsigned long long>(done.seed),
                      done.schedule.size());
        }
      } else {
        std::printf("seed %llu FAILED (%zu faults)\n",
                    static_cast<unsigned long long>(done.seed),
                    done.schedule.size());
      }
    }
    std::fflush(stdout);
  };

  chaos::SweepResult result = chaos::run_sweep(config, sweep);
  std::printf("\n%s", result.summary().c_str());
  if (profile) print_profile(static_cast<size_t>(profile_top));
  // exit_code() is non-zero for ANY violation, telemetry-drift-only runs
  // included (regression-tested in chaos_test).
  return result.exit_code();
}
