// Chaos sweep runner: N seeds of randomized fault schedules through the
// invariant auditor. Any failing seed is shrunk to a minimal repro that
// prints as a ready-to-paste FaultSpec list.
//
// Examples:
//   ./build/examples/chaos_cli --seeds=50
//   ./build/examples/chaos_cli --seeds=200 --intensity=2.0
//   ./build/examples/chaos_cli --seeds=20 --scrub=false   (expect failures:
//       silent corruption is never repaired without scrubbing)
#include <cstdio>
#include <map>

#include "chaos/sweep.h"
#include "common/flags.h"

using namespace pahoehoe;

int main(int argc, char** argv) {
  Flags flags(argc, argv);

  chaos::SweepOptions sweep;
  sweep.seeds = static_cast<int>(flags.get_int("seeds", 50, "seeds to run"));
  sweep.base_seed =
      static_cast<uint64_t>(flags.get_int("base-seed", 1, "first seed"));
  sweep.jobs = static_cast<int>(flags.get_int(
      "jobs", 1, "worker threads (0 = hardware); summary is identical "
                 "for every value"));
  sweep.schedule.intensity = flags.get_double(
      "intensity", 1.0, "fault count scale (~6 faults at 1.0)");
  sweep.schedule.corruption =
      flags.get_bool("corruption", true, "inject silent frag corruption");
  sweep.schedule.crashes =
      flags.get_bool("crashes", true, "inject FS/KLS crash-recover");
  sweep.schedule.proxy_crashes =
      flags.get_bool("proxy-crashes", true, "inject proxy crashes");
  sweep.schedule.partitions =
      flags.get_bool("partitions", true, "inject DC partitions");
  sweep.schedule.loss = flags.get_bool("loss", true, "inject iid loss");
  sweep.schedule.blackouts =
      flags.get_bool("blackouts", true, "inject node blackouts");
  sweep.schedule.duplication =
      flags.get_bool("duplication", true, "inject duplication bursts");
  sweep.schedule.disk_destroys =
      flags.get_bool("disk-destroys", true, "inject FS disk wipes");
  sweep.shrink_failures =
      flags.get_bool("shrink", true, "shrink failing schedules");
  sweep.shrink.max_runs = static_cast<int>(
      flags.get_int("shrink-runs", 400, "re-run budget per shrink"));
  sweep.trace_capacity = static_cast<size_t>(flags.get_int(
      "trace-capacity", 512,
      "message-trace ring per run; failing seeds print the tail (0 = off)"));
  sweep.trace_dump_lines = static_cast<size_t>(flags.get_int(
      "trace-lines", 40, "trace lines in a failing seed's forensics"));
  sweep.spans = flags.get_bool(
      "spans", true,
      "causal span tracing; failing seeds print the violating version's "
      "span tree");

  core::RunConfig config = chaos::chaos_default_config();
  const bool scrub = flags.get_bool(
      "scrub", true, "periodic scrub-and-repair (off: corruption sticks)");
  if (!scrub) config.convergence.scrub_interval = 0;
  config.workload.num_puts = static_cast<int>(
      flags.get_int("puts", config.workload.num_puts, "objects to store"));
  flags.finish();

  // The hook fires in completion order, which is scheduler-dependent when
  // jobs > 1. Buffer out-of-order seeds and flush in seed order so stdout
  // is byte-identical for every job count (it runs under the sweep lock,
  // so plain state is fine).
  const bool verbose = sweep.seeds <= 100;
  auto pending = std::make_shared<std::map<uint64_t, chaos::SeedOutcome>>();
  auto next = std::make_shared<uint64_t>(sweep.base_seed);
  sweep.on_seed = [verbose, pending, next](const chaos::SeedOutcome& outcome) {
    (*pending)[outcome.seed] = outcome;
    for (auto it = pending->begin();
         it != pending->end() && it->first == *next;
         it = pending->erase(it), ++*next) {
      const chaos::SeedOutcome& done = it->second;
      if (done.passed) {
        if (verbose) {
          std::printf("seed %llu ok (%zu faults)\n",
                      static_cast<unsigned long long>(done.seed),
                      done.schedule.size());
        }
      } else {
        std::printf("seed %llu FAILED (%zu faults)\n",
                    static_cast<unsigned long long>(done.seed),
                    done.schedule.size());
      }
    }
    std::fflush(stdout);
  };

  chaos::SweepResult result = chaos::run_sweep(config, sweep);
  std::printf("\n%s", result.summary().c_str());
  // exit_code() is non-zero for ANY violation, telemetry-drift-only runs
  // included (regression-tested in chaos_test).
  return result.exit_code();
}
