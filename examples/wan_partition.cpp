// WAN partition: the CAP-theorem scenario Pahoehoe is designed for (§1–§2).
//
// Two data centers lose connectivity to each other. Clients at both sides
// keep writing through their local proxies (availability under partition),
// though writes during the partition cannot reach full durability and are
// reported failed/unknown to the client. When the partition heals,
// convergence drives every durable version to AMR, and reads from either
// side observe the latest version — eventual consistency in action.
//
//   ./build/examples/wan_partition [--seed=S]
#include <cstdio>

#include "common/flags.h"
#include "core/cluster.h"
#include "net/network.h"
#include "sim/simulator.h"

using namespace pahoehoe;

namespace {

Bytes tagged_value(const std::string& tag, size_t size = 32 * 1024) {
  Bytes value(size);
  for (size_t i = 0; i < size; ++i) {
    value[i] = static_cast<uint8_t>(tag[i % tag.size()] + i / tag.size());
  }
  return value;
}

core::PutResult blocking_put(sim::Simulator& sim, core::Proxy& proxy,
                             const Key& key, const Bytes& value) {
  std::optional<core::PutResult> result;
  proxy.put(key, value, Policy{},
            [&](const core::PutResult& r) { result = r; });
  while (!result.has_value() && sim.step()) {
  }
  return *result;
}

core::GetResult blocking_get(sim::Simulator& sim, core::Proxy& proxy,
                             const Key& key) {
  std::optional<core::GetResult> result;
  proxy.get(key, [&](const core::GetResult& r) { result = r; });
  while (!result.has_value() && sim.step()) {
  }
  return *result;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const uint64_t seed =
      static_cast<uint64_t>(flags.get_int("seed", 11, "simulation seed"));
  flags.finish();

  sim::Simulator sim(seed);
  net::Network net(sim);
  core::ClusterTopology topology;
  topology.num_proxies = 2;  // proxy 0 in DC 0, proxy 1 in DC 1
  core::Cluster cluster(sim, net, topology,
                        core::ConvergenceOptions::all_opts(),
                        core::ProxyOptions{});

  const Key key{"profile/alice"};

  // Before the partition: a normal write, fully replicated.
  const Bytes v1 = tagged_value("v1-before-partition");
  const auto r1 = blocking_put(sim, cluster.proxy(0), key, v1);
  sim.run();
  std::printf("before partition: put %s, version %s, status %s\n",
              r1.success ? "acked" : "failed", to_string(r1.ov.ts).c_str(),
              core::to_string(cluster.classify(r1.ov)));

  // Partition the data centers for 10 minutes.
  const std::vector<NodeId> dc1_nodes =
      cluster.view()->nodes_in_dc(DataCenterId{1});
  std::unordered_set<NodeId> dc1(dc1_nodes.begin(), dc1_nodes.end());
  const SimTime heal_at = sim.now() + 10LL * 60 * kMicrosPerSecond;
  net.add_fault(std::make_shared<net::Partition>(dc1, sim.now(), heal_at));
  std::printf("\nWAN partition begins (10 minutes)\n");

  // Both sides keep writing through their local proxy. Each write lands
  // only its local fragments (6 < the 8-ack success threshold), so clients
  // see timeouts — but the versions are durable (6 ≥ k=4) and will
  // converge after the heal.
  const Bytes v2 = tagged_value("v2-written-in-dc0");
  const auto r2 = blocking_put(sim, cluster.proxy(0), key, v2);
  std::printf("  DC0 write during partition: %s (%d fragment acks; durable "
              "but not yet AMR)\n",
              r2.success ? "acked" : "unknown/failed", r2.frag_acks);

  const Bytes v3 = tagged_value("v3-written-in-dc1");
  const auto r3 = blocking_put(sim, cluster.proxy(1), key, v3);
  std::printf("  DC1 write during partition: %s (%d fragment acks)\n",
              r3.success ? "acked" : "unknown/failed", r3.frag_acks);

  // Reads inside each side still work and see that side's writes.
  const auto get0 = blocking_get(sim, cluster.proxy(0), key);
  const auto get1 = blocking_get(sim, cluster.proxy(1), key);
  std::printf("  DC0 read sees %s; DC1 read sees %s\n",
              get0.success && get0.value == v2 ? "its own v2" : "(other)",
              get1.success && get1.value == v3 ? "its own v3" : "(other)");

  // Heal and converge.
  std::printf("\npartition heals; convergence runs...\n");
  sim.run();
  for (const auto* r : {&r1, &r2, &r3}) {
    std::printf("  version %s: %s\n", to_string(r->ov.ts).c_str(),
                core::to_string(cluster.classify(r->ov)));
  }

  // Both sides now read the same latest version: the partition-era write
  // with the highest timestamp (DC1's v3 — proxies order concurrent puts
  // by loosely synchronized clocks, §3.1).
  const auto final0 = blocking_get(sim, cluster.proxy(0), key);
  const auto final1 = blocking_get(sim, cluster.proxy(1), key);
  const bool agree = final0.success && final1.success &&
                     final0.ts == final1.ts && final0.value == final1.value;
  std::printf("\nafter heal: both data centers read version %s — %s\n",
              to_string(final0.ts).c_str(),
              agree ? "consistent" : "INCONSISTENT");
  std::printf("  content is %s\n", final0.value == v3   ? "v3 (DC1's write)"
                                   : final0.value == v2 ? "v2 (DC0's write)"
                                                        : "unexpected");
  return agree ? 0 : 1;
}
