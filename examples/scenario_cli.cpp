// Scenario runner: a command-line front end to the experiment harness.
// Compose a topology, policy, workload, and fault schedule from flags, run
// the simulation to quiescence, and get a full report — useful for
// exploring the design space beyond the paper's figures.
//
// Examples:
//   ./build/examples/scenario_cli --puts=50 --fs-down=2 --opts=all
//   ./build/examples/scenario_cli --drop=0.10 --retry --opts=putamr
//   ./build/examples/scenario_cli --dcs=3 --fs-per-dc=4 --k=6 --n=18
//       --partition-dc=2 --fault-minutes=15  (one line)
#include <cstdio>
#include <string>

#include "common/flags.h"
#include "core/harness.h"
#include "core/workload.h"
#include "net/network.h"
#include "sim/simulator.h"

using namespace pahoehoe;

namespace {

core::ConvergenceOptions parse_opts(const std::string& name) {
  if (name == "naive") return core::ConvergenceOptions::naive();
  if (name == "fsamr-s") return core::ConvergenceOptions::fs_amr_sync();
  if (name == "fsamr") return core::ConvergenceOptions::fs_amr_unsync();
  if (name == "putamr") return core::ConvergenceOptions::put_amr();
  if (name == "sibling") return core::ConvergenceOptions::sibling_only();
  if (name == "all") return core::ConvergenceOptions::all_opts();
  std::fprintf(stderr,
               "unknown --opts '%s' (naive|fsamr-s|fsamr|putamr|sibling|all)\n",
               name.c_str());
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  core::RunConfig config = core::paper_default_config();

  // Topology.
  config.topology.num_dcs =
      static_cast<int>(flags.get_int("dcs", 2, "data centers"));
  config.topology.kls_per_dc =
      static_cast<int>(flags.get_int("kls-per-dc", 2, "KLSs per DC"));
  config.topology.fs_per_dc =
      static_cast<int>(flags.get_int("fs-per-dc", 3, "FSs per DC"));

  // Policy.
  Policy policy;
  policy.k = static_cast<uint8_t>(flags.get_int("k", 4, "data fragments"));
  policy.n = static_cast<uint8_t>(flags.get_int("n", 12, "total fragments"));
  policy.max_frags_per_fs = static_cast<uint8_t>(
      flags.get_int("frags-per-fs", 2, "max fragments per FS"));
  policy.max_frags_per_dc = static_cast<uint8_t>(
      flags.get_int("frags-per-dc", 6, "max fragments per DC"));
  policy.min_frags_for_success = static_cast<uint8_t>(flags.get_int(
      "min-success", 8, "fragment acks before the client sees success"));
  config.workload.policy = policy;

  // Workload.
  config.workload.num_puts =
      static_cast<int>(flags.get_int("puts", 100, "objects to store"));
  config.workload.value_size = static_cast<size_t>(
      flags.get_int("object-kib", 100, "object size (KiB)") * 1024);
  config.workload.retry_failed =
      flags.get_bool("retry", false, "clients retry failed puts");

  // Convergence options.
  config.convergence = parse_opts(flags.get_string(
      "opts", "all", "naive|fsamr-s|fsamr|putamr|sibling|all"));

  // Faults.
  const SimTime fault_len =
      flags.get_int("fault-minutes", 10, "blackout length (minutes)") * 60 *
      kMicrosPerSecond;
  const int fs_down =
      static_cast<int>(flags.get_int("fs-down", 0, "FSs blacked out"));
  for (int f = 0; f < fs_down; ++f) {
    config.faults.push_back(core::FaultSpec::fs_blackout(
        f % config.topology.num_dcs, f / config.topology.num_dcs, 0,
        fault_len));
  }
  const int kls_down =
      static_cast<int>(flags.get_int("kls-down", 0, "KLSs blacked out"));
  for (int f = 0; f < kls_down; ++f) {
    config.faults.push_back(core::FaultSpec::kls_blackout(
        f % config.topology.num_dcs, f / config.topology.num_dcs, 0,
        fault_len));
  }
  const int partition_dc = static_cast<int>(flags.get_int(
      "partition-dc", -1, "isolate this data center for the fault window"));
  if (partition_dc >= 0) {
    config.faults.push_back(
        core::FaultSpec::dc_partition(partition_dc, 0, fault_len));
  }
  const double drop =
      flags.get_double("drop", 0.0, "iid message drop rate (whole run)");
  if (drop > 0) {
    config.faults.push_back(core::FaultSpec::uniform_loss(drop));
  }

  const int seeds =
      static_cast<int>(flags.get_int("seeds", 1, "seeds (mean when > 1)"));
  config.seed = static_cast<uint64_t>(flags.get_int("seed", 1, "base seed"));
  const int trace_lines = static_cast<int>(flags.get_int(
      "trace", 0, "print the last N message-trace lines (single-seed runs)"));
  flags.finish();

  if (!policy.valid()) {
    std::fprintf(stderr, "invalid policy (k=%d n=%d)\n", policy.k, policy.n);
    return 2;
  }

  std::printf("pahoehoe scenario: %d DCs x (%d KLS + %d FS), policy (k=%d, "
              "n=%d), %d puts of %zu KiB, opts=%s\n\n",
              config.topology.num_dcs, config.topology.kls_per_dc,
              config.topology.fs_per_dc, policy.k, policy.n,
              config.workload.num_puts, config.workload.value_size / 1024,
              core::describe(config.convergence).c_str());

  if (seeds <= 1) {
    if (trace_lines > 0) {
      // Re-run inline with tracing (run_experiment owns its own network).
      sim::Simulator sim(config.seed);
      net::Network net(sim, config.network);
      net.tracer().enable();
      core::Cluster cluster(sim, net, config.topology, config.convergence,
                            config.proxy);
      core::WorkloadDriver driver(sim, cluster.proxy(0), config.workload,
                                  config.seed * 7919 + 17);
      driver.start();
      sim.run(config.max_sim_time);
      std::printf("last %d trace records (of %zu, %llu overflowed):\n%s\n",
                  trace_lines, net.tracer().records().size(),
                  static_cast<unsigned long long>(net.tracer().overflowed()),
                  net.tracer().dump(static_cast<size_t>(trace_lines)).c_str());
    }
    const core::RunResult r = core::run_experiment(config);
    std::printf("puts:        %d attempted, %d acked, %d failed\n",
                r.puts_attempted, r.puts_acked, r.puts_failed);
    std::printf("versions:    %d total — %d AMR (%d excess), %d non-durable,"
                " %d durable-not-AMR\n",
                r.versions_total, r.amr, r.excess_amr, r.non_durable,
                r.durable_not_amr);
    std::printf("convergence: quiescent=%s, gave up on %d, done at t=%.1f s\n",
                r.quiescent ? "yes" : "NO", r.given_up, r.end_time / 1e6);
    std::printf("network:     %llu messages, %.2f MiB total, %.2f MiB WAN\n\n",
                static_cast<unsigned long long>(r.stats.total_sent_count()),
                r.stats.total_sent_bytes() / 1048576.0,
                r.stats.wan_sent_bytes() / 1048576.0);
    std::printf("%s", r.stats.to_table().c_str());
    return r.durable_not_amr == 0 ? 0 : 1;
  }

  const core::AggregateResult agg = core::run_many(config, seeds, config.seed);
  std::printf("means over %d seeds:\n", seeds);
  std::printf("  puts attempted   %.1f\n", agg.puts_attempted.mean());
  std::printf("  puts acked       %.1f\n", agg.puts_acked.mean());
  std::printf("  AMR versions     %.1f (excess %.1f)\n", agg.amr.mean(),
              agg.excess_amr.mean());
  std::printf("  non-durable      %.2f\n", agg.non_durable.mean());
  std::printf("  durable-not-AMR  %.2f (must be 0)\n",
              agg.durable_not_amr.mean());
  std::printf("  messages         %.1f x10^3 (+/- %.1f)\n",
              agg.msg_count.mean() / 1e3,
              agg.msg_count.ci95_halfwidth() / 1e3);
  std::printf("  bytes            %.2f MiB (WAN %.2f MiB)\n",
              agg.msg_bytes.mean() / 1048576.0,
              agg.wan_bytes.mean() / 1048576.0);
  return agg.durable_not_amr.mean() == 0 ? 0 : 1;
}
