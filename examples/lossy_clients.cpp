// Lossy network walkthrough (the paper's §5.4 scenario, interactive-sized):
// clients retry failed puts over a network that drops messages at random,
// and convergence quietly turns even the "failed" attempts into fully
// redundant object versions — the paper's "excess AMR" effect.
//
//   ./build/examples/lossy_clients [--drop=0.10] [--puts=N] [--seed=S]
#include <cstdio>

#include "common/flags.h"
#include "core/cluster.h"
#include "core/workload.h"
#include "net/network.h"
#include "sim/simulator.h"

using namespace pahoehoe;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const double drop = flags.get_double("drop", 0.22, "message drop rate");
  const int puts = static_cast<int>(flags.get_int("puts", 25, "objects"));
  const uint64_t seed =
      static_cast<uint64_t>(flags.get_int("seed", 3, "simulation seed"));
  flags.finish();

  sim::Simulator sim(seed);
  net::Network net(sim);
  core::Cluster cluster(sim, net, core::ClusterTopology{},
                        core::ConvergenceOptions::all_opts(),
                        core::ProxyOptions{});
  net.add_fault(std::make_shared<net::UniformLoss>(drop));

  core::WorkloadConfig workload;
  workload.num_puts = puts;
  workload.value_size = 64 * 1024;
  workload.retry_failed = true;  // clients retry until the proxy says yes
  core::WorkloadDriver driver(sim, cluster.proxy(0), workload, seed);

  std::printf("%d clients storing one 64 KiB object each, %.0f%% of all "
              "messages dropped, retries on failure...\n\n",
              puts, drop * 100);
  driver.start();
  sim.run();

  std::printf("client view:    %d attempts -> %d acked, %d failed\n",
              driver.attempts(), driver.successes(), driver.failures());

  int amr = 0, excess = 0, non_durable = 0;
  for (const auto& record : driver.records()) {
    switch (cluster.classify(record.ov)) {
      case core::VersionStatus::kAmr:
        ++amr;
        if (!record.acked) ++excess;
        break;
      case core::VersionStatus::kNonDurable:
        ++non_durable;
        break;
      case core::VersionStatus::kDurableNotAmr:
        break;  // impossible at quiescence; counted below via pending
    }
  }
  std::printf("archive view:   %d versions at maximum redundancy\n", amr);
  std::printf("                %d of those are excess AMR — puts the client "
              "saw fail but that converged anyway\n",
              excess);
  std::printf("                %d never became durable (fewer than k=4 "
              "fragments landed)\n",
              non_durable);
  std::printf("                %zu versions still converging (should be 0)\n",
              cluster.total_pending_versions());

  // Every key still readable with verified content.
  int readable = 0;
  for (int i = 0; i < puts; ++i) {
    bool ok = false;
    cluster.proxy(0).get(driver.key_for(i), [&](const core::GetResult& r) {
      ok = r.success && r.value == driver.value_for(i);
    });
    sim.run();
    if (ok) ++readable;
  }
  std::printf("\nreads:          %d/%d objects readable and byte-identical "
              "(loss still active)\n",
              readable, puts);
  return 0;
}
