// Photo archive: the workload the paper's introduction motivates — a photo-
// sharing service storing immutable blobs across two data centers.
//
// The demo uploads an album while one Fragment Server is crashed, shows
// that uploads and downloads keep working (high availability), lets
// convergence repair the missing fragments after the server recovers, and
// verifies every photo ends At Maximum Redundancy with intact content.
//
//   ./build/examples/photo_archive [--photos=N] [--photo-kib=K] [--seed=S]
#include <cstdio>

#include "common/flags.h"
#include "common/sha256.h"
#include "core/cluster.h"
#include "net/network.h"
#include "sim/simulator.h"

using namespace pahoehoe;

namespace {

Bytes make_photo(int index, size_t size) {
  // Deterministic stand-in for JPEG bytes.
  Bytes photo(size);
  uint32_t x = 0x243f6a88u + static_cast<uint32_t>(index);
  for (auto& b : photo) {
    x = x * 1664525u + 1013904223u;
    b = static_cast<uint8_t>(x >> 24);
  }
  return photo;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const int photos = static_cast<int>(flags.get_int("photos", 20, "photos"));
  const int photo_kib =
      static_cast<int>(flags.get_int("photo-kib", 100, "photo size (KiB)"));
  const uint64_t seed =
      static_cast<uint64_t>(flags.get_int("seed", 7, "simulation seed"));
  flags.finish();

  sim::Simulator sim(seed);
  net::Network net(sim);
  core::Cluster cluster(sim, net, core::ClusterTopology{},
                        core::ConvergenceOptions::all_opts(),
                        core::ProxyOptions{});

  // One Fragment Server is down for the whole upload session (10 minutes).
  const NodeId down_fs = cluster.view()->fs_by_dc[0][0];
  net.add_fault(std::make_shared<net::NodeBlackout>(
      down_fs, 0, 10LL * 60 * kMicrosPerSecond));
  std::printf("uploading %d photos of %d KiB with %s crashed...\n", photos,
              photo_kib, to_string(down_fs).c_str());

  std::vector<ObjectVersionId> uploaded;
  std::vector<Sha256::Digest> digests;
  int acked = 0;
  for (int i = 0; i < photos; ++i) {
    const Key key{"album/2026-07-07/photo-" + std::to_string(i)};
    const Bytes photo = make_photo(i, static_cast<size_t>(photo_kib) * 1024);
    digests.push_back(Sha256::hash(photo));
    cluster.proxy(0).put(key, photo, Policy{},
                         [&](const core::PutResult& result) {
                           if (result.success) ++acked;
                           uploaded.push_back(result.ov);
                         });
    sim.run(sim.now() + kMicrosPerSecond);  // one upload per second
  }
  while (uploaded.size() < static_cast<size_t>(photos) && sim.step()) {
  }
  std::printf("  %d/%d uploads acknowledged (policy needs %d of 12 "
              "fragment acks; the crashed FS costs 2)\n",
              acked, photos, Policy{}.min_frags_for_success);

  // Reads work immediately — any 4 of the 10 live fragments decode.
  bool read_ok = false;
  cluster.proxy(0).get(Key{"album/2026-07-07/photo-0"},
                       [&](const core::GetResult& result) {
                         read_ok = result.success &&
                                   Sha256::hash(result.value) == digests[0];
                       });
  sim.run(sim.now() + 2 * kMicrosPerSecond);
  std::printf("  download during the crash: %s\n",
              read_ok ? "OK, content verified" : "FAILED");

  // Let the server recover and convergence repair the archive.
  std::printf("server recovers; running convergence to quiescence...\n");
  sim.run();

  int amr = 0;
  for (const auto& ov : uploaded) {
    if (cluster.classify(ov) == core::VersionStatus::kAmr) ++amr;
  }
  std::printf("  %d/%d photos at maximum redundancy; outstanding "
              "convergence work: %zu\n",
              amr, photos, cluster.total_pending_versions());

  // Every photo still byte-identical after repair.
  int verified = 0;
  for (int i = 0; i < photos; ++i) {
    const Key key{"album/2026-07-07/photo-" + std::to_string(i)};
    cluster.proxy(0).get(key, [&, i](const core::GetResult& result) {
      if (result.success && Sha256::hash(result.value) == digests[static_cast<size_t>(i)]) {
        ++verified;
      }
    });
    sim.run();
  }
  std::printf("  %d/%d photos verified byte-identical after repair\n",
              verified, photos);
  std::printf("network: %llu messages, %.2f MiB (%.2f MiB across the WAN)\n",
              static_cast<unsigned long long>(net.stats().total_sent_count()),
              net.stats().total_sent_bytes() / (1024.0 * 1024.0),
              net.stats().wan_sent_bytes() / (1024.0 * 1024.0));
  return (amr == photos && verified == photos) ? 0 : 1;
}
